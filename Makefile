# Developer entry points. The repo is pure Go with no external
# dependencies; everything below is a thin wrapper over the go tool.

GO ?= go

.PHONY: tier1 tier2 perturb build test vet race bench bench-smoke bench-graph bench-p2p bench-ranks bench-dense bench-telemetry bench-analysis scale-smoke analyze-smoke async-smoke clean

# tier1 is the gate every change must keep green: full build + vet +
# full test suite.
tier1: build vet test

# tier2 is the paper-shape regression gate: it regenerates the key
# evaluation artifacts at reduced scale and asserts the paper's
# qualitative claims (which model wins where) over the machine-readable
# run records. Slower than tier1 (about a minute); records land in
# shape_records.json for inspection or plotting.
tier2:
	RUN_SHAPE_CHECKS=1 SHAPE_RECORDS=$(CURDIR)/shape_records.json $(GO) test -run TestPaperShapes -v ./internal/shape/

# perturb runs the schedule-perturbation explorer (DESIGN §4a): N seeds
# per communication model on small RGG + SBP inputs, requiring every
# perturbed schedule to reproduce the exact baseline matching. On
# divergence the failing seed is shrunk to a minimal profile, written to
# perturb_failures.json, and printed as a PERTURB_SEED=... repro line.
PERTURB_N ?= 32
perturb:
	PERTURB_N=$(PERTURB_N) PERTURB_ARTIFACT=$(CURDIR)/perturb_failures.json \
		$(GO) test -run 'TestExplore|TestInjectedOrderingBug|TestPerturbedRunInvariants' -v ./internal/sched/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the suite under the race detector (slower; the simulated-MPI
# runtime is heavily concurrent, so this is the second gate).
race:
	$(GO) test -race ./...

# bench runs every benchmark once with allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# bench-smoke compiles and runs every benchmark for a single iteration:
# a fast CI-grade check that no benchmark has rotted, without measuring
# anything.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime=1x ./...

# bench-graph reproduces the ingest-path numbers recorded in
# BENCH_graph.json: generator throughput, CSR build/permute/summary, and
# the matching setup kernel.
bench-graph:
	$(GO) test -run xxx -bench . -benchmem ./internal/graph/ ./internal/gen/
	$(GO) test -run xxx -bench 'Serial|Parallel' -benchmem ./internal/matching/

# bench-p2p reproduces the point-to-point hot-path numbers recorded in
# BENCH_p2p.json.
bench-p2p:
	$(GO) test -run xxx -bench 'PingPong|MailboxBacklog|IprobeBacklogMiss|AnySourceFanIn64' -benchmem ./internal/mpi/

# bench-ranks reproduces the ranks-scaling curve recorded in
# BENCH_p2p.json: the 4-round ring + allreduce world at 1K..RANKS ranks
# under both scheduler modes, plus the pooled world-setup cost and the
# steady-state per-rank memory footprint.
RANKS ?= 131072
bench-ranks:
	BENCH_RANKS=$(RANKS) $(GO) test -run xxx -bench 'RanksRing|WorldSetup|WorldFootprint' -benchmem -timeout 60m ./internal/mpi/

# scale-smoke is the large-world CI gate: a 16K-rank world (ring
# exchange + collectives) must complete within CI budgets and hold the
# per-rank steady-state memory ceiling (footprint_test.go), and the
# rank-count scaling experiment capped at 4K ranks must pass.
scale-smoke:
	$(GO) test -run 'TestLargeWorldSmoke|TestWorldFootprintCeiling16K' -v -timeout 10m ./internal/mpi/
	$(GO) run ./cmd/matchbench -exp ranks -ranks 4096 -json ranks_records.json

# bench-dense reproduces the process-graph density sweep recorded in
# BENCH_p2p.json: the NCL vs NCLC (message-combining neighborhood
# collectives) crossover on ring-banded block graphs.
bench-dense:
	$(GO) run ./cmd/matchbench -exp ext-density -scale 0.5 -json density_records.json

# bench-telemetry reproduces the round-telemetry observer-cost numbers
# recorded in BENCH_telemetry.json.
bench-telemetry:
	$(GO) test -run xxx -bench Telemetry -benchmem -count 3 ./internal/matching/

# bench-analysis reproduces the trace-analyzer throughput numbers
# recorded in BENCH_analysis.json (1K-16K rank traces).
bench-analysis:
	$(GO) test -run xxx -bench BenchmarkAnalyze -benchmem ./internal/analysis/

# analyze-smoke is the profiler CI gate: matchprof re-runs a small
# ranks x models grid of the SBP weak-scaling experiment with the trace
# analyzer on, writes the analyzed records as an artifact, and the
# wait-attribution shape check must pass over freshly generated records.
analyze-smoke:
	$(GO) run ./cmd/matchprof -exp fig4c -scale 0.25 -models nsr,ncl,rma -json analysis_records.json
	RUN_SHAPE_CHECKS=1 SHAPE_SCALE=0.5 $(GO) test -run 'TestPaperShapes/fig4c-wait-attribution' -v ./internal/shape/

# async-smoke is the asynchronous-engine CI gate: the maximal-matching
# engine (Safra termination detection) vs its round-fenced baseline,
# every matching verified maximal, records written as an artifact, plus
# the explorer sweep over the engine and the detector at a reduced seed
# budget and the ext-async shape check over freshly generated records.
async-smoke:
	$(GO) run ./cmd/matchbench -exp ext-async -scale 0.5 -json async_records.json
	$(GO) test -run 'TestExploreAsyncMaximal|TestExploreQuiesceDetector' -short -v ./internal/sched/
	RUN_SHAPE_CHECKS=1 SHAPE_SCALE=0.5 $(GO) test -run 'TestPaperShapes/ext-async-beats-rounds' -v ./internal/shape/

clean:
	$(GO) clean ./...
