# Developer entry points. The repo is pure Go with no external
# dependencies; everything below is a thin wrapper over the go tool.

GO ?= go

.PHONY: tier1 build test vet race bench bench-p2p clean

# tier1 is the gate every change must keep green: full build + vet +
# full test suite.
tier1: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the suite under the race detector (slower; the simulated-MPI
# runtime is heavily concurrent, so this is the second gate).
race:
	$(GO) test -race ./...

# bench runs every benchmark once with allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# bench-p2p reproduces the point-to-point hot-path numbers recorded in
# BENCH_p2p.json.
bench-p2p:
	$(GO) test -run xxx -bench 'PingPong|MailboxBacklog|IprobeBacklogMiss|AnySourceFanIn64' -benchmem ./internal/mpi/

clean:
	$(GO) clean ./...
