# Developer entry points. The repo is pure Go with no external
# dependencies; everything below is a thin wrapper over the go tool.

GO ?= go

.PHONY: tier1 tier2 build test vet race bench bench-p2p bench-telemetry clean

# tier1 is the gate every change must keep green: full build + vet +
# full test suite.
tier1: build vet test

# tier2 is the paper-shape regression gate: it regenerates the key
# evaluation artifacts at reduced scale and asserts the paper's
# qualitative claims (which model wins where) over the machine-readable
# run records. Slower than tier1 (about a minute); records land in
# shape_records.json for inspection or plotting.
tier2:
	RUN_SHAPE_CHECKS=1 SHAPE_RECORDS=$(CURDIR)/shape_records.json $(GO) test -run TestPaperShapes -v ./internal/shape/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the suite under the race detector (slower; the simulated-MPI
# runtime is heavily concurrent, so this is the second gate).
race:
	$(GO) test -race ./...

# bench runs every benchmark once with allocation stats.
bench:
	$(GO) test -run xxx -bench . -benchmem ./...

# bench-p2p reproduces the point-to-point hot-path numbers recorded in
# BENCH_p2p.json.
bench-p2p:
	$(GO) test -run xxx -bench 'PingPong|MailboxBacklog|IprobeBacklogMiss|AnySourceFanIn64' -benchmem ./internal/mpi/

# bench-telemetry reproduces the round-telemetry observer-cost numbers
# recorded in BENCH_telemetry.json.
bench-telemetry:
	$(GO) test -run xxx -bench Telemetry -benchmem -count 3 ./internal/matching/

clean:
	$(GO) clean ./...
