// Using the MPI-3 runtime directly: a halo exchange over a process-graph
// topology implemented three ways — point-to-point, neighborhood
// collectives, and one-sided puts — the same three models the matching
// study compares, on a toy stencil so the mechanics are easy to see.
//
//	go run ./examples/commodels
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/mpi"
)

const (
	procs = 16
	steps = 50
	cells = 1000 // local cells per rank
)

// ringNeighbors gives each rank its left and right ring peers.
func ringNeighbors(r int) []int {
	return []int{(r + procs - 1) % procs, (r + 1) % procs}
}

// haloP2P exchanges boundary cells with explicit sends and receives.
func haloP2P(c *mpi.Comm, left, right int64) (newLeft, newRight int64) {
	l, r := ringNeighbors(c.Rank())[0], ringNeighbors(c.Rank())[1]
	c.Isend(l, 0, []int64{left})
	c.Isend(r, 1, []int64{right})
	fromRight, _ := c.Recv(r, 0)
	fromLeft, _ := c.Recv(l, 1)
	return fromLeft[0], fromRight[0]
}

func run(name string, body func(c *mpi.Comm) error) {
	rep, err := mpi.Run(procs, body, mpi.WithDeadline(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	tot := rep.Totals()
	fmt.Printf("%-12s modeled time %8.3fms  p2p msgs %6d  puts %5d  nbr ops %5d\n",
		name, rep.MaxVirtualTime*1e3, tot.P2PMsgs, tot.PutMsgs, tot.NbrOps)
}

func main() {
	fmt.Printf("halo exchange on a %d-rank ring, %d steps, %d cells/rank\n\n", procs, steps, cells)

	// 1. Classical Send-Recv.
	run("send-recv", func(c *mpi.Comm) error {
		left, right := int64(c.Rank()), int64(c.Rank())
		for s := 0; s < steps; s++ {
			l, r := haloP2P(c, left, right)
			c.Compute(cells) // relax the interior
			left, right = l+1, r+1
		}
		return nil
	})

	// 2. Neighborhood collectives over a graph topology.
	run("neighborhood", func(c *mpi.Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank()))
		halo := []int64{int64(c.Rank()), int64(c.Rank())}
		for s := 0; s < steps; s++ {
			got := topo.NeighborAlltoallInt64(halo, 1)
			c.Compute(cells)
			halo[0], halo[1] = got[0]+1, got[1]+1
		}
		return nil
	})

	// 3. One-sided puts into neighbor windows, passive target.
	run("rma", func(c *mpi.Comm) error {
		topo := c.CreateGraphTopo(ringNeighbors(c.Rank()))
		win := c.WinCreate(2) // slot 0: from left, slot 1: from right
		win.LockAll()
		l, r := ringNeighbors(c.Rank())[0], ringNeighbors(c.Rank())[1]
		left, right := int64(c.Rank()), int64(c.Rank())
		for s := 0; s < steps; s++ {
			win.Put(l, 1, []int64{left})
			win.Put(r, 0, []int64{right})
			win.FlushAll()
			// The count exchange doubles as the arrival notification,
			// exactly like the matching code's per-round handshake.
			topo.NeighborAlltoallInt64([]int64{1, 1}, 1)
			local := win.Local()
			c.Compute(cells)
			left, right = local[0]+1, local[1]+1
		}
		win.UnlockAll()
		win.Free()
		return nil
	})

	fmt.Println("\nsame stencil, three MPI communication models — the trade-offs mirror")
	fmt.Println("the matching study: per-message costs vs per-round neighborhood costs.")
}
