// Quickstart: generate a graph, match it serially and under all four MPI
// communication models, and compare results and modeled execution times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/matching"
)

func main() {
	// An Orkut-flavored social network: heavy-tailed degrees, ~120k
	// edges. Every generator in internal/gen is deterministic in its
	// seed.
	g := gen.Social(20000, 12, 42)
	fmt.Println("input:", g.Summary())

	// Serial baseline: the locally-dominant algorithm (paper Alg. 2).
	serial := core.MatchSerial(g)
	fmt.Printf("serial: weight=%.1f cardinality=%d\n\n", serial.Weight, serial.Cardinality)

	// Distributed runs. With hashed tie-breaking the locally-dominant
	// matching is unique, so every model must reproduce the serial
	// result exactly — only the communication behavior differs.
	const procs = 16
	fmt.Printf("%-6s %12s %10s %12s %10s\n", "model", "time(ms)", "rounds", "messages", "speedup")
	var nsrTime float64
	for _, model := range core.Models {
		res, err := core.Match(g, core.Options{
			Procs:    procs,
			Model:    model,
			Deadline: time.Minute,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := matching.VerifyLocallyDominant(g, res.Result); err != nil {
			log.Fatalf("%v produced a bad matching: %v", model, err)
		}
		if res.Weight != serial.Weight {
			log.Fatalf("%v weight %.3f differs from serial %.3f", model, res.Weight, serial.Weight)
		}
		t := res.Report.MaxVirtualTime
		if model == core.NSR {
			nsrTime = t
		}
		fmt.Printf("%-6v %12.3f %10d %12d %9.2fx\n",
			model, t*1e3, res.Rounds, res.Messages, nsrTime/t)
	}
	fmt.Printf("\nall models reproduced the serial matching (weight %.1f) on %d ranks\n", serial.Weight, procs)
}
