// Reordering pipeline (the paper's §V-C): take a mesh whose vertex ids
// are scattered (as matrices arrive from collections), reorder it with
// Reverse Cuthill-McKee, and compare bandwidth, partition balance and
// matching performance before and after — the Fig 7 / Tables V-VI /
// Fig 8 story.
//
//	go run ./examples/reordering
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/distgraph"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

func main() {
	// A banded CFD-style mesh, scrambled to simulate collection order.
	mesh := gen.BandedMesh(25000, 32, 3, 0.001, 3)
	original, _ := gen.Scramble(mesh, 4)

	perm := order.RCM(original)
	reordered := order.Apply(original, perm)

	fmt.Printf("%-10s %9s %12s\n", "", "bandwidth", "profile")
	fmt.Printf("%-10s %9d %12d\n", "original:", original.Bandwidth(), original.Profile())
	fmt.Printf("%-10s %9d %12d\n", "RCM:", reordered.Bandwidth(), reordered.Profile())
	fmt.Println()

	const procs = 32
	for _, in := range []struct {
		name string
		g    *graph.CSR
	}{
		{"original", original},
		{"RCM", reordered},
	} {
		d := distgraph.NewBlockDist(in.g, procs)
		fmt.Printf("%-9s topology: %s\n", in.name, d.ProcessGraphStats())
		fmt.Printf("          ghosts:   %s\n", d.GhostEdgeStats())

		var nsr float64
		for _, model := range []core.Model{core.NSR, core.RMA, core.NCL, core.MBP} {
			res, err := core.Match(in.g, core.Options{Procs: procs, Model: model, Deadline: 2 * time.Minute})
			if err != nil {
				log.Fatal(err)
			}
			t := res.Report.MaxVirtualTime
			if model == core.NSR {
				nsr = t
				fmt.Printf("          %-4v %8.3fms\n", model, t*1e3)
				continue
			}
			fmt.Printf("          %-4v %8.3fms  (%.2fx vs NSR)\n", model, t*1e3, nsr/t)
		}
		fmt.Println()
	}
	fmt.Println("expected pattern: RCM shrinks sigma(|E'|) and localizes the process graph,")
	fmt.Println("letting the aggregated models pull further ahead of Send-Recv (paper Fig 8).")
}
