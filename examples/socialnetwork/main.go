// Social-network scenario (the paper's Fig 6 / Table IV story): on
// heavy-tailed graphs the one-sided and neighborhood-collective models
// win at moderate scale, but the process graph densifies as ranks are
// added — every rank ends up neighboring every other — and the blocking
// collectives' advantage erodes.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/distgraph"
	"repro/internal/gen"
)

func main() {
	g := gen.Social(60000, 10, 7)
	fmt.Println("Friendster-style input:", g.Summary())
	fmt.Println()

	for _, procs := range []int{8, 16, 32, 64} {
		// First look at the distributed process graph the 1-D partition
		// induces — the quantity the paper's Table IV tracks.
		st := distgraph.NewBlockDist(g, procs).ProcessGraphStats()
		fmt.Printf("p=%-3d process graph: %s\n", procs, st)

		var nsr float64
		for _, model := range []core.Model{core.NSR, core.RMA, core.NCL} {
			res, err := core.Match(g, core.Options{Procs: procs, Model: model, Deadline: 2 * time.Minute})
			if err != nil {
				log.Fatal(err)
			}
			t := res.Report.MaxVirtualTime
			if model == core.NSR {
				nsr = t
				fmt.Printf("      %-4v %8.3fms\n", model, t*1e3)
				continue
			}
			fmt.Printf("      %-4v %8.3fms  (%.2fx vs NSR)\n", model, t*1e3, nsr/t)
		}
		fmt.Println()
	}
	fmt.Println("expected pattern: RMA/NCL lead at small p; as dmax approaches p-1,")
	fmt.Println("per-round neighborhood costs erode the collectives' advantage (paper Fig 6).")
}
