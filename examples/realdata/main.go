// Real-data pipeline: load a SuiteSparse-style Matrix Market file (the
// format the paper's Cage15, HV15R, Orkut and Friendster inputs are
// distributed in), reorder it with RCM, and run the communication-model
// comparison on it.
//
//	go run ./examples/realdata path/to/graph.mtx
//
// Without an argument the example writes itself a small Matrix Market
// file first, so it always runs out of the box.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		// Self-contained demo input: a banded mesh in collection order.
		path = filepath.Join(os.TempDir(), "realdata-demo.mtx")
		g := gen.OrderByDegree(gen.BandedMesh(8000, 24, 2.5, 0.002, 1))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.WriteMatrixMarket(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("no input given; wrote demo graph to", path)
	}

	g, err := graph.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loaded:  ", g.Summary())

	reordered := order.Apply(g, order.RCM(g))
	fmt.Println("post-RCM:", reordered.Summary())
	fmt.Println()

	const procs = 16
	serial := core.MatchSerial(reordered)
	fmt.Printf("serial matching: weight=%.1f cardinality=%d\n\n", serial.Weight, serial.Cardinality)
	var nsr float64
	for _, model := range core.Models {
		res, err := core.Match(reordered, core.Options{Procs: procs, Model: model, Deadline: 2 * time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		if res.Weight != serial.Weight {
			log.Fatalf("%v disagrees with serial", model)
		}
		t := res.Report.MaxVirtualTime
		if model == core.NSR {
			nsr = t
			fmt.Printf("%-5v %9.3fms\n", model, t*1e3)
			continue
		}
		fmt.Printf("%-5v %9.3fms  (%.2fx vs NSR)\n", model, t*1e3, nsr/t)
	}
}
